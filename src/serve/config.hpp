// ServeConfig: the single configuration surface of the serving runtime.
//
// Historically the runtime grew three overlapping knob structs —
// KvServer::Config, WorkerPool's ctor Config, and the loadgen's mix
// fields — with `burst` and the pool geometry spelled differently in each.
// This file consolidates the server-side pair into one documented struct
// that both KvServer and WorkerPool consume directly (the client-side
// zipfian mix lives in ServeMixConfig, src/harness/workload.hpp, embedded
// by LoadgenConfig).
//
// Every field is public and plain — brace/assign initialization keeps
// working — but each also has a fluent `with_*` setter that validates its
// arguments eagerly (std::invalid_argument on nonsense), and validate()
// re-checks the whole struct at construction time of whatever consumes
// it.  Invalid geometry therefore fails at setup, loudly, instead of
// clamping silently into a shape the benchmarks then mis-label.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bjrw {
class ClockSource;  // src/harness/timing.hpp
}

namespace bjrw::serve {

// How an idle elastic worker waits for work (DESIGN.md §12).
enum class ParkPolicy : std::uint8_t {
  kFutex,  // std::atomic wait/notify (a futex on Linux): parked workers
           // block and cost nothing until a submitter or shutdown wakes them
  kSpin,   // never block: idle workers keep yield-spinning (the pre-elastic
           // behavior; the right choice for latency-critical pinned setups)
};

struct ServeConfig {
  // ---- placement / map ------------------------------------------------------
  std::size_t shards_per_node = 8;  // per-node write parallelism vs memory
  bool node_local_dispatch = true;  // false: round-robin (oblivious arm)
  bool node_local_alloc = true;     // false: caller-thread construction

  // ---- pool geometry --------------------------------------------------------
  // Per-node worker width floats in [min_width, max_width]: max_width
  // workers are spawned (clamped to the narrowest CPU-bearing node's CPU
  // count), and those beyond min_width park when their queue stays empty
  // past park_grace_ns.  min_width == max_width is a fixed-width pool.
  int min_width = 1;
  int max_width = 1;
  std::size_t queue_capacity = 1024;  // per-node, rounded up to 2^k
  bool pin_workers = true;            // best-effort Topology::pin_this_thread
  // Burst dataplane depth: workers bulk-dequeue up to `burst` slices per
  // poll and execute each owning node's batched-get keys — across parent
  // requests — under one lock epoch per shard.  0 selects the legacy
  // per-item pop/execute path (E18's control arm); 1 runs the burst path
  // with degenerate runs (identical results, same code shape as K > 1).
  std::size_t burst = 1;

  // ---- elasticity (DESIGN.md §12) -------------------------------------------
  ParkPolicy park_policy = ParkPolicy::kFutex;
  // How long a worker beyond min_width tolerates an empty queue before
  // parking.  Too short thrashes the futex under bursty arrivals; too long
  // keeps idle spinners hot.  100us ≈ a few thousand failed polls.
  std::uint64_t park_grace_ns = 100'000;

  // ---- admission (DESIGN.md §12) --------------------------------------------
  // Per-node token bucket charged per key (batched gets) / per op (point
  // ops) at the submit edge, before any latch init.  0 disables shedding.
  double admit_rate = 0.0;      // tokens (≈ ops) per second per node
  // Bucket depth: how much burst above the sustained rate a node absorbs.
  // 0 derives 10ms worth of rate (min 64) — enough that batched submits
  // are not sheared apart by quantization.
  std::size_t admit_burst = 0;
  // Advisory depth bound: a submit finding the target node's queue at or
  // beyond the high-water mark is deferred with AdmitResult::kQueueFull
  // (the caller may retry; nothing was enqueued).  0 disables the check.
  std::size_t queue_high_water = 0;

  // ---- lease expiry (src/expiry/, DESIGN.md §13) ----------------------------
  // Off by default: put_with_ttl/touch require expiry_enabled, and the map
  // skips the read-path lease filter entirely when it is off.
  bool expiry_enabled = false;
  // Timer-wheel tick: leases may deliver up to one resolution early (floor
  // rounding) and one late (lazy cascade), never more.
  std::uint64_t expiry_resolution_ns = 1'000'000;  // 1ms
  std::size_t expiry_wheel_slots = 256;  // per level; power of two
  int expiry_wheel_levels = 3;           // spans slots^levels * resolution
  // Leases harvested + erased per sweep batch (one shard-group write epoch
  // each).  1 is the per-item control arm E22 measures against.
  std::size_t expiry_sweep_batch = 128;
  // Debt ceiling: a maintenance poll keeps draining batches while the due
  // backlog exceeds this; below it, leftovers wait for the next poll so a
  // storm cannot monopolize a worker.
  std::size_t expiry_max_debt = 4096;
  // Lease-time source; nullptr = steady clock.  Tests inject a VirtualClock
  // to drive wheel cascade and sweep choreography tick-by-tick.  Not owned;
  // must outlive the server.
  const ClockSource* expiry_clock = nullptr;

  // ---- deadlines ------------------------------------------------------------
  // Time source for Request::deadline_ns checks (admission edge + worker
  // dequeue); nullptr = steady clock.  Kept separate from expiry_clock so
  // deadline tests can drive a VirtualClock without also rewiring lease
  // semantics.  Not owned; must outlive the server.
  const ClockSource* clock = nullptr;

  // ---- fluent validated setters ---------------------------------------------

  ServeConfig& with_shards(std::size_t shards) {
    if (shards < 1) fail("shards_per_node must be >= 1");
    shards_per_node = shards;
    return *this;
  }
  // Fixed-width pool: min_width == max_width == w.
  ServeConfig& with_workers(int w) { return with_widths(w, w); }
  ServeConfig& with_widths(int mn, int mx) {
    if (mn < 1) fail("min_width must be >= 1");
    if (mx < mn) fail("max_width must be >= min_width");
    min_width = mn;
    max_width = mx;
    return *this;
  }
  ServeConfig& with_queue_capacity(std::size_t cap) {
    if (cap < 2) fail("queue_capacity must be >= 2");
    queue_capacity = cap;
    return *this;
  }
  ServeConfig& with_pin(bool pin) {
    pin_workers = pin;
    return *this;
  }
  ServeConfig& with_dispatch(bool node_local) {
    node_local_dispatch = node_local;
    return *this;
  }
  ServeConfig& with_alloc(bool node_local) {
    node_local_alloc = node_local;
    return *this;
  }
  ServeConfig& with_burst(std::size_t b) {
    burst = b;  // 0 is meaningful: the per-item control arm
    return *this;
  }
  ServeConfig& with_park(ParkPolicy policy, std::uint64_t grace_ns) {
    if (grace_ns == 0) fail("park_grace_ns must be > 0");
    park_policy = policy;
    park_grace_ns = grace_ns;
    return *this;
  }
  ServeConfig& with_admission(double rate_per_s, std::size_t bucket = 0) {
    if (rate_per_s < 0.0) fail("admit_rate must be >= 0");
    admit_rate = rate_per_s;
    admit_burst = bucket;
    return *this;
  }
  ServeConfig& with_high_water(std::size_t depth) {
    queue_high_water = depth;
    return *this;
  }
  // Arms the expiry subsystem: wheel resolution, sweep batch, and the max
  // sweep-debt ceiling (0 debt = drain fully every poll).
  ServeConfig& with_expiry(std::uint64_t resolution_ns,
                           std::size_t sweep_batch = 128,
                           std::size_t max_debt = 4096) {
    if (resolution_ns == 0) fail("expiry_resolution_ns must be > 0");
    if (sweep_batch < 1) fail("expiry_sweep_batch must be >= 1");
    expiry_enabled = true;
    expiry_resolution_ns = resolution_ns;
    expiry_sweep_batch = sweep_batch;
    expiry_max_debt = max_debt;
    return *this;
  }
  ServeConfig& with_expiry_wheel(std::size_t slots, int levels) {
    if (slots < 2 || (slots & (slots - 1)) != 0)
      fail("expiry_wheel_slots must be a power of two >= 2");
    if (levels < 1 || levels > 8) fail("expiry_wheel_levels must be in [1, 8]");
    expiry_wheel_slots = slots;
    expiry_wheel_levels = levels;
    return *this;
  }
  ServeConfig& with_expiry_clock(const ClockSource* source) {
    expiry_clock = source;
    return *this;
  }
  ServeConfig& with_clock(const ClockSource* source) {
    clock = source;
    return *this;
  }

  // Effective bucket depth once the 0-means-derived rule is applied.
  std::size_t effective_admit_burst() const {
    if (admit_burst > 0) return admit_burst;
    const auto derived = static_cast<std::size_t>(admit_rate * 0.010);
    return derived > 64 ? derived : 64;
  }

  // Whole-struct re-check; consumers (KvServer, WorkerPool) call this at
  // construction so direct field assignment gets the same gate as the
  // fluent setters.
  const ServeConfig& validate() const {
    if (shards_per_node < 1) fail("shards_per_node must be >= 1");
    if (min_width < 1) fail("min_width must be >= 1");
    if (max_width < min_width) fail("max_width must be >= min_width");
    if (queue_capacity < 2) fail("queue_capacity must be >= 2");
    if (park_grace_ns == 0) fail("park_grace_ns must be > 0");
    if (admit_rate < 0.0) fail("admit_rate must be >= 0");
    if (expiry_enabled) {
      if (expiry_resolution_ns == 0) fail("expiry_resolution_ns must be > 0");
      if (expiry_sweep_batch < 1) fail("expiry_sweep_batch must be >= 1");
      if (expiry_wheel_slots < 2 ||
          (expiry_wheel_slots & (expiry_wheel_slots - 1)) != 0)
        fail("expiry_wheel_slots must be a power of two >= 2");
      if (expiry_wheel_levels < 1 || expiry_wheel_levels > 8)
        fail("expiry_wheel_levels must be in [1, 8]");
    }
    return *this;
  }

 private:
  [[noreturn]] static void fail(const char* what) {
    throw std::invalid_argument(std::string("ServeConfig: ") + what);
  }
};

}  // namespace bjrw::serve
