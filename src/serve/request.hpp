// Request/response vocabulary of the serving runtime (src/serve/).
//
// The runtime is a submit/complete pipeline: a client thread fills a
// Request, the server splits it into node-owned SubRequests (see
// server.hpp), the owning nodes' pinned workers execute them against the
// placed map, and the client joins on a completion latch.  Two choices keep
// the hot path allocation- and lock-free on the client side:
//
//  * Requests are *client-owned*: the client provides the Request (stack or
//    pool), the key span, and the result array, and must keep them alive
//    until wait() returns.  The submit path never copies keys and performs
//    no per-request allocation (the queue items are two-word SubRequest
//    descriptors); workers gather their slice into thread-local scratch
//    whose capacity persists, so the steady-state hot path does not
//    allocate either.
//
//  * Completion is a counting latch, not a future chain: `pending` is
//    initialized to the number of node sub-requests before the first
//    enqueue, each worker decrements it (release) after writing its slice
//    of the results, and the client waits for zero (acquire) — so a batch
//    split across nodes completes exactly when its last slice does, and
//    every result write happens-before the client's read.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/harness/spin.hpp"

namespace bjrw::serve {

// Typed admission outcome of a submit — the API-wide replacement for the
// old bool returns.  Every submit path (WorkerPool, KvServer, NetServer's
// wire mapping) speaks this enum; `accepted` is the only value that
// enqueues anything, and an accepted item is *guaranteed* to execute
// exactly once, even racing shutdown (the drain protocol in
// worker_pool.hpp).  The numeric order is a severity order: aggregating a
// batch takes the max (worst_of), so a request whose slices saw both
// kAccepted and kShutdown reports kShutdown.
enum class AdmitResult : std::uint8_t {
  kAccepted = 0,          // enqueued; will execute exactly once
  kShedOverload = 1,      // per-node token bucket empty: nothing enqueued
  kQueueFull = 2,         // per-node depth over high water: nothing enqueued
  kDeadlineExceeded = 3,  // deadline_ns already past at admission or dequeue
  kShutdown = 4,          // server stopping: nothing (more) enqueued
};

constexpr AdmitResult worst_of(AdmitResult a, AdmitResult b) {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

constexpr const char* to_string(AdmitResult r) {
  switch (r) {
    case AdmitResult::kAccepted: return "accepted";
    case AdmitResult::kShedOverload: return "shed_overload";
    case AdmitResult::kQueueFull: return "queue_full";
    case AdmitResult::kDeadlineExceeded: return "deadline_exceeded";
    case AdmitResult::kShutdown: return "shutdown";
  }
  return "?";
}

enum class RequestKind : std::uint8_t {
  kGet,       // point lookup of keys[0]
  kGetBatch,  // bulk lookup of keys[0..key_count)
  kPut,       // upsert key -> value (ttl_ns > 0 attaches a lease)
  kErase,     // remove key
  kTouch,     // extend key's lease by ttl_ns (expiry-enabled servers only)
};

// One client request.  For kGet/kGetBatch the client points `keys` at its
// key span and (optionally) `out` at a result array of the same length;
// for kPut/kErase only `key`/`value` are read.  Everything above the
// "filled by the runtime" line is owned by the client and must stay alive
// until done().
struct Request {
  RequestKind kind = RequestKind::kGet;
  const std::uint64_t* keys = nullptr;
  std::uint32_t key_count = 0;
  std::optional<std::uint64_t>* out = nullptr;  // optional per-key results
  std::uint64_t key = 0;    // kPut/kErase/kTouch
  std::uint64_t value = 0;  // kPut
  // Lease TTL relative to execution time; 0 = no lease.  Read for kPut
  // (put_with_ttl) and kTouch on expiry-enabled servers, ignored otherwise.
  std::uint64_t ttl_ns = 0;
  // Absolute deadline against the server's ClockSource; 0 = none.  Checked
  // at the admission edge (refused with kDeadlineExceeded, nothing
  // enqueued) and again at worker dequeue: a slice whose deadline has
  // already passed is *dropped* — the latch is still decremented, but no
  // map work runs and `dropped` records the slice (see pack_response in
  // net_server.hpp for how partial batches surface this on the wire).
  std::uint64_t deadline_ns = 0;

  // --- filled by the runtime -------------------------------------------------
  // Key indices grouped by owning node (server-side scratch; SubRequests
  // slice into it).  Reused across submissions of the same Request object.
  std::vector<std::uint32_t> order;
  std::uint64_t submit_ns = 0;                // stamped at dispatch
  std::atomic<std::uint64_t> hits{0};         // keys found (gets), 1/0 (erase)
  std::atomic<std::uint64_t> value_sum{0};    // checksum over found values
  std::atomic<std::uint32_t> pending{0};      // outstanding sub-requests
  std::atomic<std::uint32_t> dropped{0};      // slices dropped at dequeue
  // Admission outcome, written by the *submitting* thread strictly before
  // submit returns (plain field: workers never touch it, and the client
  // owns the request, so there is no race to order).  Mirrors submit()'s
  // return value; a refused request has pending == 0 so wait() returns
  // immediately.
  AdmitResult outcome = AdmitResult::kAccepted;

  AdmitResult submit_outcome() const { return outcome; }

  bool done() const {
    return pending.load(std::memory_order_acquire) == 0;
  }
  // Spin-joins the completion latch (yielding — client threads may share
  // cores with the workers they wait for).
  void wait() const {
    spin_until<YieldSpin>([&] { return done(); });
  }
  // Resets the runtime-filled fields for resubmission of the same object.
  void reset() {
    hits.store(0, std::memory_order_relaxed);
    value_sum.store(0, std::memory_order_relaxed);
    pending.store(0, std::memory_order_relaxed);
    dropped.store(0, std::memory_order_relaxed);
    submit_ns = 0;
    outcome = AdmitResult::kAccepted;
  }

  // One worker's latch decrement — the shared completion tail of both the
  // per-item and the burst execution paths.  `on_last` runs exactly once,
  // strictly *before* the releasing decrement commits, iff this call is
  // the completing one — that ordering is what lets the server promise its
  // stats stripes are exact the moment wait() returns.  `pending` only
  // ever decreases while in flight, so a CAS that observes 1 cannot lose
  // the race to another decrementer (there is none left), and a stale
  // higher read is corrected by the CAS-failure reload.  The moment the
  // completing decrement lands the client may destroy or reuse the
  // request, so callers must snapshot everything they need first and never
  // touch it afterwards.
  template <class OnLast>
  void complete_one(OnLast&& on_last) {
    std::uint32_t p = pending.load(std::memory_order_relaxed);
    bool ran = false;
    for (;;) {
      if (p == 1 && !ran) {
        on_last();
        ran = true;
      }
      if (pending.compare_exchange_weak(p, p - 1, std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        break;
    }
  }
};

// The queue item: one node's slice of a request.  [begin, end) indexes into
// parent->order for kGetBatch; point ops carry the degenerate [0, 0).
// `owner` is the slice's owning node, computed once at dispatch (under
// oblivious dispatch the executing pool's node differs — the worker still
// needs the owner to pick the right sub-map).
struct SubRequest {
  Request* parent = nullptr;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::int32_t owner = 0;
};

}  // namespace bjrw::serve
