#!/usr/bin/env python3
"""Bench-regression gate over the bjrw-bench-v1 trajectory.

Diffs a fresh ``bench_main --json`` run against the committed baseline
(``BENCH_baseline.json``) and fails when either

  * an RMR ceiling breaks: a paper lock's reader/writer per-attempt maximum
    (or a dist/cohort transform's *reader* maximum — their writer sweep is
    O(slots) by design) exceeds the flat ceiling the tier-1 gate pins, or

  * throughput regresses: on a pinned comparison group, the median
    fresh/baseline ratio over the group's matched rows drops by more than
    ``--max-drop`` (default 25%).

Rows are matched by (bench, row name, identity metrics); medians are taken
per group so one noisy row cannot fail the gate.  Row *parity* is itself a
hard check: within any bench both documents ran, a baseline row missing
from the fresh run or a fresh-only new row fails with a message naming the
row (never a KeyError traceback) — refresh ``BENCH_baseline.json``
alongside the bench change, or pass ``--allow-row-drift`` to downgrade the
mismatch to a warning.  Benches present only in the baseline are treated
as a deliberately filtered run and noted, not failed.

The RMR checks are exact counts from the instrumented cache model and are
runner-independent, so they are always hard failures.  Wall-clock
throughput is only meaningfully comparable between runs from comparable
machines, which is what the bjrw-bench-v1 machine header decides: when the
baseline and fresh documents disagree on hardware_concurrency or compiler
family, throughput regressions are reported as warnings instead of
failures (pass --strict-throughput to force them hard, e.g. on a runner
fleet known to be homogeneous).

Usage:
  bench_compare.py BASELINE FRESH [--report OUT.md] [--max-drop 0.25]
                   [--rmr-ceiling 40] [--strict-throughput]
                   [--allow-row-drift]

Exit status: 0 = no regression, 1 = regression detected, 2 = usage/schema
error.
"""

import argparse
import json
import statistics
import sys

SCHEMA = "bjrw-bench-v1"

# Flat-ceiling contracts (mirrors tests/rmr_regression_test.cpp): lock-name
# prefixes whose reader AND writer maxima must stay under the ceiling, and
# prefixes gated on the reader side only (their writer pays a documented
# O(slots) sweep).  Names appear both bare and as "rmr/<name>" rows.
FLAT_BOTH_PREFIXES = (
    "fig1_swwp", "fig2_swrp", "thm3_mw_nopri", "thm4_mw_rpref",
    "fig4_mw_wpref",
)
FLAT_READER_PREFIXES = ("dist_", "cohort_")

# Pinned throughput groups: (bench, row-name prefix).  Every matched row in
# the group contributes its ratio; the group's MEDIAN must not drop.
PINNED_GROUPS = [
    ("throughput", "thm3_mw_nopri"),
    ("throughput", "thm4_mw_rpref"),
    ("throughput", "fig4_mw_wpref"),
    ("throughput", "dist_mw_wpref"),
    ("throughput", "cohort_mw_wpref"),
    ("uncontended", "read/"),
    ("uncontended", "write/"),
]

THROUGHPUT_METRICS = ("mops_per_s", "read_mops_per_s", "total_mops_per_s")

# Metrics that parameterize a row (vs. measure it): used to match rows
# between the two documents.
IDENTITY_METRICS = ("readers", "writers", "threads", "read_fraction",
                    "nodes")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path} is not a {SCHEMA} document (top level is "
                 f"{type(doc).__name__}, not an object)")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path} is not a {SCHEMA} document "
                 f"(schema={doc.get('schema')!r})")
    validate_structure(doc, path)
    return doc


def validate_structure(doc, path):
    """Shape-check the document so downstream code never trips over a
    missing key with a bare KeyError/AttributeError traceback; any
    violation is a usage/schema error (exit 2) with a message naming the
    offending element."""
    benches = doc.get("benches")
    if not isinstance(benches, list):
        sys.exit(f"error: {path}: 'benches' must be a list "
                 f"(got {type(benches).__name__})")
    for i, bench in enumerate(benches):
        if not isinstance(bench, dict) or not isinstance(
                bench.get("bench"), str):
            sys.exit(f"error: {path}: benches[{i}] lacks a string 'bench' "
                     f"name")
        rows = bench.get("rows")
        if not isinstance(rows, list):
            sys.exit(f"error: {path}: bench '{bench['bench']}' has no "
                     f"'rows' list")
        for j, row in enumerate(rows):
            if not isinstance(row, dict) or not isinstance(
                    row.get("name"), str):
                sys.exit(f"error: {path}: bench '{bench['bench']}' "
                         f"rows[{j}] lacks a string 'name'")
            if not isinstance(row.get("metrics", {}), dict):
                sys.exit(f"error: {path}: row "
                         f"'{bench['bench']}/{row['name']}' has a "
                         f"non-object 'metrics'")


def row_key(bench, row):
    ident = tuple((k, row.get("metrics", {}).get(k))
                  for k in IDENTITY_METRICS)
    return (bench, row.get("name"), ident)


def index_rows(doc):
    out = {}
    for bench in doc.get("benches", []):
        for row in bench.get("rows", []):
            # Duplicate keys (repeated row names without distinguishing
            # identity metrics) keep the first occurrence: stable and
            # symmetric across both documents.
            out.setdefault(row_key(bench.get("bench"), row), row)
    return out


def describe_key(key):
    bench, name, ident = key
    params = ", ".join(f"{k}={v}" for k, v in ident if v is not None)
    return f"{bench}/{name}" + (f" ({params})" if params else "")


def check_row_parity(baseline_idx, fresh_idx):
    """Row drift between the two documents is an error, not a silent skip.

    Scoped per bench: a bench present in only one document is usually a
    deliberately filtered run (the CI gate benches a subset of the
    baseline), so whole-bench asymmetry is only an error in the direction
    that can hide a regression — a *fresh* bench with no baseline at all
    (nothing pins it; refresh the baseline).  Within a bench both
    documents ran, every row must match: a baseline row absent from the
    fresh run means a row was renamed/removed (the old number no longer
    gates anything), and a fresh-only row means new rows ride ungated.

    Returns (failures, skipped_benches)."""
    base_benches = {key[0] for key in baseline_idx}
    fresh_benches = {key[0] for key in fresh_idx}
    shared = base_benches & fresh_benches
    failures = []
    for bench in sorted(fresh_benches - base_benches):
        failures.append(
            f"fresh run contains bench '{bench}' with no baseline rows — "
            f"refresh BENCH_baseline.json to start pinning it")
    for key in sorted(baseline_idx, key=describe_key):
        if key[0] in shared and key not in fresh_idx:
            failures.append(
                f"baseline row {describe_key(key)} is missing from the "
                f"fresh run — renamed or dropped? refresh "
                f"BENCH_baseline.json together with the bench change")
    for key in sorted(fresh_idx, key=describe_key):
        if key[0] in shared and key not in baseline_idx:
            failures.append(
                f"fresh run introduces row {describe_key(key)} absent from "
                f"the baseline — refresh BENCH_baseline.json so the new "
                f"row is pinned too")
    return failures, sorted(base_benches - fresh_benches)


def strip_rmr_prefix(name):
    return name[4:] if name.startswith("rmr/") else name


def check_rmr_ceilings(fresh, ceiling):
    """Absolute flat-ceiling check on the fresh run (exact model counts)."""
    failures = []
    for bench in fresh.get("benches", []):
        for row in bench.get("rows", []):
            metrics = row.get("metrics", {})
            name = strip_rmr_prefix(row.get("name", ""))
            reader_gated = name.startswith(
                FLAT_BOTH_PREFIXES) or name.startswith(FLAT_READER_PREFIXES)
            writer_gated = name.startswith(FLAT_BOTH_PREFIXES)
            for metric, gated in (("rmr_reader_max", reader_gated),
                                  ("rmr_writer_max", writer_gated)):
                value = metrics.get(metric)
                if gated and value is not None and value > ceiling:
                    failures.append(
                        f"{bench.get('bench')}/{row.get('name')}: "
                        f"{metric}={value:g} exceeds flat ceiling {ceiling}")
    return failures


def check_throughput(baseline_idx, fresh_idx, max_drop):
    """Median fresh/baseline ratio per pinned group must not drop.

    A baseline row whose fresh metric is missing or zero contributes ratio
    0.0: a collapsed lock is the worst regression, not a skip.  Two cases
    are *structural* (always-hard, regardless of machine comparability):
    a pinned group with no baseline rows at all (renamed lock — update
    PINNED_GROUPS and the baseline together), and a group whose rows exist
    in the baseline but are entirely absent from the fresh run (broken
    bench registration).

    Returns (structural_failures, throughput_failures, table).
    """
    structural, failures, table = [], [], []
    for bench, prefix in PINNED_GROUPS:
        ratios = []
        fresh_seen = 0
        for key, base_row in baseline_idx.items():
            if key[0] != bench or not key[1].startswith(prefix):
                continue
            fresh_row = fresh_idx.get(key)
            if fresh_row is not None:
                fresh_seen += 1
            for metric in THROUGHPUT_METRICS:
                b = base_row.get("metrics", {}).get(metric)
                if not b or b <= 0:
                    continue  # baseline carries no usable number to pin
                f = (fresh_row or {}).get("metrics", {}).get(metric)
                ratios.append(f / b if f and f > 0 else 0.0)
        if not ratios:
            table.append((bench, prefix, None, "NO BASELINE ROWS"))
            structural.append(
                f"{bench}/{prefix}*: pinned group has no baseline rows — "
                f"update PINNED_GROUPS and BENCH_baseline.json together")
            continue
        if fresh_seen == 0:
            table.append((bench, prefix, 0.0, "MISSING IN FRESH RUN"))
            structural.append(
                f"{bench}/{prefix}*: baseline rows have no counterpart in "
                f"the fresh run — bench or row registration broke")
            continue
        median = statistics.median(ratios)
        ok = median >= 1.0 - max_drop
        table.append((bench, prefix, median, "ok" if ok else "REGRESSED"))
        if not ok:
            failures.append(
                f"{bench}/{prefix}*: median throughput ratio {median:.3f} "
                f"below allowed {1.0 - max_drop:.2f} "
                f"({len(ratios)} matched metrics)")
    return structural, failures, table


def pinned_mismatch(baseline, fresh):
    """True when one run pinned its workload threads and the other did not.

    Pinned and unpinned wall-clock numbers live in different regimes (a
    pinned run removes migration noise and changes the contention shape),
    so they are never held against each other — not even under
    --strict-throughput.  Documents predating the `pinned` header key count
    as unpinned."""
    b, f = baseline.get("machine") or {}, fresh.get("machine") or {}
    return bool(b.get("pinned", False)) != bool(f.get("pinned", False))


def order_policy_mismatch(baseline, fresh):
    """True when the two runs were built with different memory-ordering
    policies (DESIGN.md §2).

    Same rule as `pinned`: a hotpath build executes different fence
    instructions, so its wall-clock numbers are a different measurement
    regime from a seq_cst build's and the two are never compared — not even
    under --strict-throughput.  Documents predating the `order_policy`
    header key are seq_cst (the only policy that existed)."""
    b, f = baseline.get("machine") or {}, fresh.get("machine") or {}
    return (b.get("order_policy", "seq_cst") !=
            f.get("order_policy", "seq_cst"))


def comparable_machines(baseline, fresh):
    """True when wall-clock numbers from the two runs can be held against
    each other: same hardware_concurrency, same compiler family, and the
    same pinning regime."""
    b, f = baseline.get("machine"), fresh.get("machine")
    if not b or not f:
        return False
    if pinned_mismatch(baseline, fresh):
        return False
    if order_policy_mismatch(baseline, fresh):
        return False
    if b.get("hardware_concurrency") != f.get("hardware_concurrency"):
        return False
    b_cc = str(b.get("compiler", "")).split(" ")[0]
    f_cc = str(f.get("compiler", "")).split(" ")[0]
    return b_cc == f_cc and b_cc != ""


def fmt_machine(doc):
    m = doc.get("machine")
    if not m:
        return "(no machine metadata — pre-metadata document)"
    return (f"{m.get('hardware_concurrency', '?')} hw threads, "
            f"topology {m.get('topology', '?')} "
            f"({m.get('topology_source', '?')}), "
            f"{m.get('compiler', '?')}, {m.get('build_type', '?')}, "
            f"order_policy {m.get('order_policy', 'seq_cst')}, "
            f"{'pinned' if m.get('pinned') else 'unpinned'}")


def write_report(path, args, baseline, fresh, rmr_failures, tp_table,
                 tp_failures, tp_hard, matched, baseline_only, fresh_only,
                 pin_differs=False, policy_differs=False):
    lines = ["# bench-regression report", ""]
    lines.append(f"* baseline: `{args.baseline}` — {fmt_machine(baseline)}")
    lines.append(f"* fresh:    `{args.fresh}` — {fmt_machine(fresh)}")
    lines.append(f"* rows matched: {matched} "
                 f"(baseline-only: {baseline_only}, fresh-only: {fresh_only})")
    lines.append("")
    lines.append(f"## Hard checks: RMR flat ceilings (<= {args.rmr_ceiling}) "
                 f"+ structural row coverage")
    lines.append("")
    if rmr_failures:
        lines += [f"* **FAIL** {f}" for f in rmr_failures]
    else:
        lines.append("* all gated rows under the ceiling, all pinned groups "
                     "present")
    lines.append("")
    lines.append(f"## Pinned throughput groups "
                 f"(median ratio >= {1.0 - args.max_drop:.2f}, "
                 f"{'hard' if tp_hard else 'advisory — machines differ'})")
    lines.append("")
    lines.append("| bench | group | median fresh/baseline | verdict |")
    lines.append("|---|---|---|---|")
    for bench, prefix, median, verdict in tp_table:
        med = "-" if median is None else f"{median:.3f}"
        lines.append(f"| {bench} | {prefix}* | {med} | {verdict} |")
    lines.append("")
    hard_tp = tp_failures if tp_hard else []
    if pin_differs:
        lines.append("One document is pinned and the other is not: pinned "
                     "rows are never compared against unpinned baselines "
                     "(not even under --strict-throughput).  Re-run the "
                     "baseline with the matching --pin setting.")
        lines.append("")
    elif policy_differs:
        lines.append("The two documents were built with different memory-"
                     "ordering policies (BJRW_ORDER_POLICY): a hotpath "
                     "build executes different fence instructions, so its "
                     "wall-clock rows are never compared against a seq_cst "
                     "baseline (not even under --strict-throughput).  "
                     "Refresh the baseline from a matching-policy build.")
        lines.append("")
    elif tp_failures and not tp_hard:
        lines.append("Throughput drops above were downgraded to warnings: "
                     "the two documents come from non-comparable machines "
                     "(see headers above).  Refresh the baseline from this "
                     "runner class or pass --strict-throughput to gate "
                     "anyway.")
        lines.append("")
    verdict = "REGRESSION" if (rmr_failures or hard_tp) else "clean"
    lines.append(f"**Overall: {verdict}**")
    lines.append("")
    text = "\n".join(lines)
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
    return text


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_baseline.json")
    ap.add_argument("fresh", help="fresh bench_main --json output")
    ap.add_argument("--report", help="write a markdown report here")
    ap.add_argument("--max-drop", type=float, default=0.25,
                    help="allowed fractional median-throughput drop "
                         "(default 0.25)")
    ap.add_argument("--rmr-ceiling", type=float, default=40,
                    help="flat per-attempt RMR ceiling (default 40, the "
                         "tier-1 gate's constant)")
    ap.add_argument("--strict-throughput", action="store_true",
                    help="fail on throughput drops even when the machine "
                         "headers say the runs are not comparable")
    ap.add_argument("--allow-row-drift", action="store_true",
                    help="downgrade row-parity mismatches (baseline rows "
                         "missing from the fresh run, fresh-only rows) "
                         "from hard failures to warnings")
    args = ap.parse_args()
    if not 0 <= args.max_drop < 1:
        ap.error("--max-drop must be in [0, 1)")

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    baseline_idx = index_rows(baseline)
    fresh_idx = index_rows(fresh)
    matched = sum(1 for k in baseline_idx if k in fresh_idx)

    rmr_failures = check_rmr_ceilings(fresh, args.rmr_ceiling)
    parity_failures, skipped_benches = check_row_parity(baseline_idx,
                                                        fresh_idx)
    if parity_failures and args.allow_row_drift:
        for warning in parity_failures:
            print(f"warning (row drift allowed): {warning}",
                  file=sys.stderr)
        parity_failures = []
    if skipped_benches:
        print(f"note: baseline benches not in this run (filtered): "
              f"{', '.join(skipped_benches)}", file=sys.stderr)
    structural, tp_failures, tp_table = check_throughput(
        baseline_idx, fresh_idx, args.max_drop)
    structural = parity_failures + structural
    pin_differs = pinned_mismatch(baseline, fresh)
    policy_differs = order_policy_mismatch(baseline, fresh)
    tp_hard = (args.strict_throughput or
               comparable_machines(baseline, fresh)) \
        and not pin_differs and not policy_differs

    text = write_report(args.report, args, baseline, fresh,
                        rmr_failures + structural, tp_table, tp_failures,
                        tp_hard, matched,
                        len(baseline_idx) - matched,
                        len(fresh_idx) - matched, pin_differs,
                        policy_differs)
    print(text)
    hard_failures = (rmr_failures + structural +
                     (tp_failures if tp_hard else []))
    if hard_failures:
        print("bench-regression: FAILED", file=sys.stderr)
        for f in hard_failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench-regression: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
